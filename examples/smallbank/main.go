// SmallBank example: the paper's banking workload on the public API — six
// transaction types over checking/savings tables, a configurable fraction of
// them distributed, with a conservation audit at the end.
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"

	"drtmr"
	"drtmr/internal/bench/smallbank"
	"drtmr/internal/cluster"
)

func main() {
	nodes := flag.Int("nodes", 3, "machines")
	threads := flag.Int("threads", 2, "worker sessions per machine")
	txns := flag.Int("txns", 300, "transactions per session")
	remote := flag.Float64("remote", 0.10, "distributed-transaction probability for SP/AMG")
	flag.Parse()

	cfg := smallbank.DefaultConfig(*nodes)
	cfg.AccountsPerNode = 2000
	cfg.RemoteProb = *remote

	db, err := drtmr.Open(drtmr.Options{
		Nodes:       *nodes,
		Replicas:    3,
		Partitioner: cfg.Partitioner(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Tables + data on every machine that holds a copy.
	c := db.Cluster()
	for _, m := range c.Machines {
		smallbank.CreateTables(m.Store, cfg)
	}
	initCfg := c.Coord.Current()
	var before uint64
	for s := 0; s < *nodes; s++ {
		shard := cluster.ShardID(s)
		for _, nd := range append([]drtmr.NodeID{initCfg.PrimaryOf(shard)}, initCfg.BackupsOf(shard)...) {
			if err := smallbank.Load(c.Machines[nd].Store, cfg, shard); err != nil {
				log.Fatal(err)
			}
		}
		before += uint64(cfg.AccountsPerNode) * cfg.InitialBalance * 2
	}
	db.Start()

	var wg sync.WaitGroup
	var mu sync.Mutex
	var committed uint64
	perType := map[smallbank.TxType]int{}
	for n := 0; n < *nodes; n++ {
		for t := 0; t < *threads; t++ {
			wg.Add(1)
			go func(node, tid int) {
				defer wg.Done()
				sess := db.Session(drtmr.NodeID(node))
				g := smallbank.NewGen(cfg, cluster.ShardID(node), uint64(node*16+tid+1))
				local := map[smallbank.TxType]int{}
				for i := 0; i < *txns; i++ {
					p := g.Next()
					// Keep the audit exact: swap the two
					// money-creating types for balance checks.
					if p.Type == smallbank.TxDepositChecking || p.Type == smallbank.TxWithdrawChecking {
						p.Type = smallbank.TxBalance
					}
					if err := smallbank.Execute(sess.Worker(), p); err != nil {
						log.Printf("txn failed: %v", err)
						return
					}
					local[p.Type]++
				}
				mu.Lock()
				committed += sess.Stats().Committed
				for k, v := range local {
					perType[k] += v
				}
				mu.Unlock()
			}(n, t)
		}
	}
	wg.Wait()

	fmt.Printf("committed %d transactions across %d sessions\n", committed, *nodes**threads)
	for ty := smallbank.TxSendPayment; ty <= smallbank.TxBalance; ty++ {
		fmt.Printf("  %-24v %6d\n", ty, perType[ty])
	}

	// Audit: conserving mix must keep the total identical.
	var after uint64
	finalCfg := c.Coord.Current()
	for s := 0; s < *nodes; s++ {
		m := c.Machines[finalCfg.PrimaryOf(cluster.ShardID(s))]
		lo := uint64(s) * uint64(cfg.AccountsPerNode)
		for k := lo; k < lo+uint64(cfg.AccountsPerNode); k++ {
			for _, id := range []drtmr.TableID{smallbank.TableChecking, smallbank.TableSavings} {
				if off, ok := m.Store.Table(id).Lookup(k); ok {
					after += smallbank.DecBalance(m.Store.Table(id).ReadValueNonTx(off))
				}
			}
		}
	}
	fmt.Printf("audit: %d before, %d after", before, after)
	if before == after {
		fmt.Println("  -- conserved ✓")
	} else {
		fmt.Println("  -- MISMATCH ✗")
	}
}
