package main

import (
	"strings"
	"testing"
)

// TestQuickstartSmoke runs the example end to end with its in-process
// server: the wire calls must succeed and the balances (checking+savings,
// both loaded at 100) must reflect the deposit (200+50-25) and the payment
// (200+25).
func TestQuickstartSmoke(t *testing.T) {
	var out strings.Builder
	if err := run(&out, ""); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	t.Logf("\n%s", got)
	for _, want := range []string{
		"booted in-process drtmr-serve",
		"account 5: 225",
		"account 105: 225",
		"status:",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}
