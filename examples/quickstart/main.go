// Quickstart: a three-machine DrTM+R cluster behind the drtmr-serve network
// front door. The example boots an in-process server (a real TCP listener on
// a loopback port, the same code path as cmd/drtmr-serve), connects the Go
// client to it, and runs bank stored procedures over the wire: a deposit, a
// cross-machine payment, and balance reads — every call carrying the typed
// abort taxonomy back if anything goes wrong.
//
// Point it at an already-running server instead with:
//
//	go run ./examples/quickstart -connect 127.0.0.1:7707
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"drtmr/internal/bench/smallbank"
	"drtmr/internal/serve"
	"drtmr/internal/serve/client"
)

func main() {
	connect := flag.String("connect", "", "address of an external drtmr-serve (empty = boot one in-process)")
	flag.Parse()
	if err := run(os.Stdout, *connect); err != nil {
		log.Fatal(err)
	}
}

// run executes the quickstart against addr, or against an in-process server
// when addr is empty (the fallback keeps the example self-contained: no
// separate process to start, but the calls still cross a real TCP socket).
func run(out io.Writer, addr string) error {
	cfg := smallbank.Config{
		AccountsPerNode: 100,
		Nodes:           3,
		InitialBalance:  100,
	}
	if addr == "" {
		db, err := serve.OpenBank(cfg, 3)
		if err != nil {
			return err
		}
		srv := serve.New(db, serve.Options{WorkersPerNode: 2})
		if err := serve.RegisterBank(srv, cfg, serve.BankProcs{}); err != nil {
			return err
		}
		bound, err := srv.Start("127.0.0.1:0")
		if err != nil {
			return err
		}
		defer srv.Close()
		addr = bound.String()
		fmt.Fprintf(out, "booted in-process drtmr-serve on %s (3 machines, 3-way replication)\n", addr)
	}

	cl := client.New(client.Options{Addr: addr})
	defer cl.Close()

	// Accounts partition by key/AccountsPerNode: account 5 lives on machine
	// 0 and account 105 on machine 1, so the payment below is a distributed
	// transaction — remote lock via RDMA CAS, local HTM commit, replication
	// to the backups — executed server-side by the payment stored procedure.
	const from, to = 5, 105
	if _, err := cl.Call("deposit", serve.EncDeposit(from, 50)); err != nil {
		return fmt.Errorf("deposit: %w", err)
	}
	if _, err := cl.Call("payment", serve.EncPayment(from, to, 25)); err != nil {
		// Aborts come back typed: reason, pipeline stage and site survive
		// the wire (client.AbortError), not just a string.
		return fmt.Errorf("payment: %w", err)
	}
	for _, acct := range []uint64{from, to} {
		reply, err := cl.Call("balance", serve.EncBalanceReq(acct))
		if err != nil {
			return fmt.Errorf("balance(%d): %w", acct, err)
		}
		fmt.Fprintf(out, "account %d: %d\n", acct, binary.LittleEndian.Uint64(reply))
	}

	// The live status endpoint works mid-run, over the same connection.
	raw, err := cl.Status()
	if err != nil {
		return fmt.Errorf("status: %w", err)
	}
	fmt.Fprintf(out, "status: %d bytes of live JSON (try /statusz over HTTP for the same view)\n", len(raw))
	return nil
}
