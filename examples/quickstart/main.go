// Quickstart: a three-machine DrTM+R cluster with 3-way replication running
// a distributed transfer between accounts on different machines.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"drtmr"
)

const accounts drtmr.TableID = 1

func bal(v uint64) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func val(b []byte) uint64 { return binary.LittleEndian.Uint64(b[:8]) }

func main() {
	db, err := drtmr.Open(drtmr.Options{Nodes: 3, Replicas: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.CreateTable(accounts, drtmr.TableSpec{
		Name: "accounts", ValueSize: 16, ExpectedRows: 128,
	})
	// Keys partition by key%3, so 0 lives on machine 0 and 1 on machine 1.
	db.MustLoad(accounts, 0, bal(100))
	db.MustLoad(accounts, 1, bal(100))

	// A session on machine 0 transfers 25 from account 0 (local) to
	// account 1 (remote): the commit locks the remote record with RDMA
	// CAS, validates, updates locally under HTM, replicates to the
	// backups, and only then reports success.
	s := db.Session(0)
	err = s.Update(func(tx *drtmr.Tx) error {
		from, err := tx.Read(accounts, 0)
		if err != nil {
			return err
		}
		to, err := tx.Read(accounts, 1)
		if err != nil {
			return err
		}
		if err := tx.Write(accounts, 0, bal(val(from)-25)); err != nil {
			return err
		}
		return tx.Write(accounts, 1, bal(val(to)+25))
	})
	if err != nil {
		log.Fatal(err)
	}

	// Read back from a different machine with the read-only protocol.
	s2 := db.Session(2)
	err = s2.View(func(tx *drtmr.Tx) error {
		a, err := tx.Read(accounts, 0)
		if err != nil {
			return err
		}
		b, err := tx.Read(accounts, 1)
		if err != nil {
			return err
		}
		fmt.Printf("account 0: %d\naccount 1: %d\n", val(a), val(b))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	st := s.Stats()
	fmt.Printf("session stats: %d committed, %d aborts\n",
		st.Committed, st.AbortsTotal())
}
