//go:build !race

package drtmr_test

const raceEnabled = false
