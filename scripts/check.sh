#!/bin/sh
# CI gate: build everything, vet everything, then run the full test suite
# under the race detector. The simulator runs real goroutines for workers,
# appliers and the coordinator, so -race gives the HTM/NIC/oplog paths a
# genuine concurrency workout rather than a formality.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...

# Smoke-run every benchmark once: the figure benchmarks drive the full
# harness (including the coroutine-overlap sweep), so this catches
# experiment-path regressions that unit tests miss.
go test -run '^$' -bench . -benchtime 1x ./...
