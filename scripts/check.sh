#!/bin/sh
# CI gate: build everything, vet everything, then run the full test suite
# under the race detector. The simulator runs real goroutines for workers,
# appliers and the coordinator, so -race gives the HTM/NIC/oplog paths a
# genuine concurrency workout rather than a formality.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...

# Static protocol invariants: the drtmr-vet analyzer suite (internal/lint)
# enforces the runtime invariants at compile time — no blocking/yield inside
# HTM regions, no wall clock or global rand in protocol packages, fully
# attributed txn.Error literals, complete lock-CAS back-out scans, no
# single-verb RDMA where a doorbell batch is in scope, lock-order/hold-
# across-yield discipline, allocation-free //drtmr:hotpath functions, and
# exhaustive protocol-enum switches. The ratchet CLI sweeps BOTH build-tag
# halves (-race re-runs with -tags race) and diffs findings against the
# committed lint-baseline.json in both directions: new findings are new
# debt, stale entries are paid-off debt that must leave the ledger.
# Suppressions require a reasoned //drtmr:allow. The SARIF log is the
# code-scanning artifact for CI upload.
go build -o bin/drtmr-vet ./cmd/drtmr-vet
./bin/drtmr-vet -race -sarif bin/drtmr-vet.sarif ./...
echo "drtmr-vet SARIF artifact: bin/drtmr-vet.sarif"

# Both halves of the //go:build race / !race pair must keep compiling: the
# !race half is covered by the plain build+vet above; this compiles (and
# standard-vets) the race-tagged configuration, so a tag typo can't silently
# drop a file from either half.
go vet -race ./...

go test -race ./...

# Strict-serializability gate: a short torture sweep under -race (the full
# suite above already ran the full sweep; -short keeps this pass <30s), the
# mutation self-test (every deliberately broken protocol step must be
# caught), and a fuzz smoke of the redo-record codec.
go test -race -short -run 'TestTortureSweep|TestMutationSelfTest|TestStaleIncarnationScenario' -count=1 ./internal/check/
go test -run '^$' -fuzz FuzzRedoRoundtrip -fuzztime 5s ./internal/cluster/

# Serve gate: the network front door end to end under -race — >=10k stored
# procedures over real TCP through admission control, then the sampled
# history must pass the strict-serializability checker, the bank must
# conserve money exactly, and the fleet accounting must close (every offered
# call lands in exactly one outcome bucket; Dropped == 0). Plus a fuzz smoke
# of the wire frame codec (length-prefix framing + Call/Result roundtrip).
go test -race -run 'TestServeGateEndToEnd|TestAdmissionShedsAtOverload|TestAdmissionDisabledQueuesEverything' -count=1 ./internal/serve/
go test -run '^$' -fuzz FuzzFrameRoundtrip -fuzztime 5s ./internal/serve/wire/

# Trace-overhead gate: the observability layer must not move virtual time.
# TestTraceOverheadBudget (in the race run above) asserts enabled==disabled
# and <3% drift vs BENCH_coroutine_overlap.json; this prints the numbers at
# the baseline's iteration count for the log.
go test ./internal/txn/ -run '^$' -bench BenchmarkTraceOverhead -benchtime 200x

# Contention-manager gate: the tail sweep runs both ContentionMode settings
# through the hot-key queue and commutative-delta commit paths (named
# explicitly so a benchmark-filter change can't silently drop it; the
# catch-all pass below also includes it).
go test -run '^$' -bench BenchmarkFigContentionTail -benchtime 1x .

# Commit-protocol gate: the conformance suite runs the shared correctness
# battery (bank invariant, uncommittable-read block, dangling-lock release,
# coroutine atomicity, lock back-out) over EVERY registered CommitProtocol,
# and the protocol-matrix figure drives both pipelines head-to-head — it
# fails on any nonzero read-only-participant wakeup count.
go test -race -run 'TestProtocolConformance|TestProtocolLockBackoutReleasesAll|TestProtocolROVerbAccounting|TestProtocolRegistry' -count=1 ./internal/txn/
go test -run '^$' -bench BenchmarkFigProtocolMatrix -benchtime 1x .

# Smoke-run every benchmark once: the figure benchmarks drive the full
# harness (including the coroutine-overlap sweep), so this catches
# experiment-path regressions that unit tests miss.
go test -run '^$' -bench . -benchtime 1x ./...
