#!/bin/sh
# CI gate: build everything, vet everything, then run the full test suite
# under the race detector. The simulator runs real goroutines for workers,
# appliers and the coordinator, so -race gives the HTM/NIC/oplog paths a
# genuine concurrency workout rather than a formality.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...

# Trace-overhead gate: the observability layer must not move virtual time.
# TestTraceOverheadBudget (in the race run above) asserts enabled==disabled
# and <3% drift vs BENCH_coroutine_overlap.json; this prints the numbers at
# the baseline's iteration count for the log.
go test ./internal/txn/ -run '^$' -bench BenchmarkTraceOverhead -benchtime 200x

# Smoke-run every benchmark once: the figure benchmarks drive the full
# harness (including the coroutine-overlap sweep), so this catches
# experiment-path regressions that unit tests miss.
go test -run '^$' -bench . -benchtime 1x ./...
