package drtmr_test

import (
	"bytes"
	"os"
	"testing"
	"time"

	"drtmr/internal/bench/harness"
	"drtmr/internal/obs"
)

// TestFig20_RecoveryTimeline reproduces Fig 20: kill one machine of a
// replicated TPC-C cluster and verify (a) the failure is suspected only
// after the lease expires (≈10ms), (b) the configuration recommits and
// recovery completes, and (c) throughput resumes after the failure. It is a
// test rather than a benchmark because it runs on wall-clock time.
func TestFig20_RecoveryTimeline(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock recovery experiment")
	}
	lease := 150 * time.Millisecond
	run := 3 * time.Second
	if raceEnabled {
		// The race detector slows goroutines by roughly an order of
		// magnitude; widen the wall-clock windows so lease expiry,
		// reconfiguration and recovery still fit inside the run.
		lease = 400 * time.Millisecond
		run = 10 * time.Second
	}
	tl := harness.RunRecovery(3, 2, run, lease)
	tl.Fprint(os.Stdout)
	if tl.SuspectAt.IsZero() {
		t.Fatal("failure never suspected")
	}
	if tl.ConfigAt.IsZero() {
		t.Fatal("configuration never recommitted")
	}
	if tl.RecoveredAt.IsZero() {
		t.Fatal("recovery never completed")
	}
	if d := time.Duration(tl.DetectNanos); d < lease/3 {
		t.Errorf("suspected after %v; the %v lease should gate detection", d, lease)
	}
	if tl.PostFailPct < 20 {
		t.Errorf("throughput regained only %.0f%% of pre-failure", tl.PostFailPct)
	}

	// The milestones above were extracted from the obs recorder (the old
	// ad-hoc string channel now only triggers worker revival); check the
	// recorder indeed carries the full kill → suspect → config-commit →
	// recovery-done sequence in order, and that it exports as a valid
	// Chrome trace.
	if tl.Trace == nil {
		t.Fatal("recovery timeline has no obs recorder")
	}
	seen := map[uint8]time.Time{}
	for _, ev := range tl.Trace.Events() {
		if ev.Kind != obs.EvMilestone {
			continue
		}
		if _, dup := seen[ev.Detail]; !dup {
			seen[ev.Detail] = time.Unix(0, ev.Start)
		}
	}
	order := []uint8{obs.MilestoneKilled, obs.MilestoneSuspect,
		obs.MilestoneConfigCommit, obs.MilestoneRecoveryDone}
	for i, m := range order {
		at, ok := seen[m]
		if !ok {
			t.Fatalf("milestone %q missing from obs recorder", obs.MilestoneName(m))
		}
		if i > 0 && at.Before(seen[order[i-1]]) {
			t.Errorf("milestone %q at %v precedes %q at %v",
				obs.MilestoneName(m), at, obs.MilestoneName(order[i-1]), seen[order[i-1]])
		}
	}
	if got, want := seen[obs.MilestoneSuspect], tl.SuspectAt; !got.Equal(want) {
		t.Errorf("SuspectAt %v != recorder milestone %v", want, got)
	}
	var buf bytes.Buffer
	if err := obs.WriteTrace(&buf, []*obs.Recorder{tl.Trace}, harness.TraceNames()); err != nil {
		t.Fatalf("trace export: %v", err)
	}
	cats, err := obs.ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("invalid recovery trace: %v", err)
	}
	if cats["milestone"] < len(order) {
		t.Errorf("recovery trace has %d milestone events, want >= %d", cats["milestone"], len(order))
	}
}
