package drtmr_test

import (
	"os"
	"testing"
	"time"

	"drtmr/internal/bench/harness"
)

// TestFig20_RecoveryTimeline reproduces Fig 20: kill one machine of a
// replicated TPC-C cluster and verify (a) the failure is suspected only
// after the lease expires (≈10ms), (b) the configuration recommits and
// recovery completes, and (c) throughput resumes after the failure. It is a
// test rather than a benchmark because it runs on wall-clock time.
func TestFig20_RecoveryTimeline(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock recovery experiment")
	}
	lease := 150 * time.Millisecond
	run := 3 * time.Second
	if raceEnabled {
		// The race detector slows goroutines by roughly an order of
		// magnitude; widen the wall-clock windows so lease expiry,
		// reconfiguration and recovery still fit inside the run.
		lease = 400 * time.Millisecond
		run = 10 * time.Second
	}
	tl := harness.RunRecovery(3, 2, run, lease)
	tl.Fprint(os.Stdout)
	if tl.SuspectAt.IsZero() {
		t.Fatal("failure never suspected")
	}
	if tl.ConfigAt.IsZero() {
		t.Fatal("configuration never recommitted")
	}
	if tl.RecoveredAt.IsZero() {
		t.Fatal("recovery never completed")
	}
	if d := time.Duration(tl.DetectNanos); d < lease/3 {
		t.Errorf("suspected after %v; the %v lease should gate detection", d, lease)
	}
	if tl.PostFailPct < 20 {
		t.Errorf("throughput regained only %.0f%% of pre-failure", tl.PostFailPct)
	}
}
